// Package telemetry is the observability substrate for a deployed FedSZ
// pipeline: a dependency-free metrics registry that renders the Prometheus
// text exposition format, plus a lightweight JSONL trace-event layer for
// per-connection and per-round timelines.
//
// # Metrics
//
// A Registry holds metric families — counters, gauges, gauge functions,
// and histograms with explicit buckets — each optionally split into series
// by constant labels. Registration is get-or-create: asking for a name and
// label set that already exists returns the existing metric, so package-
// level instrumentation can be initialized lazily from several call sites
// (and several servers in one process can share one family) without
// duplicate-registration panics. Asking for an existing name with a
// different type or help string panics: that is a programming error.
//
// The update paths are designed for hot loops: counters and histogram
// observations are single atomic operations (histograms pre-compute their
// bucket bounds at registration), gauges are a CAS on the float bits, and
// none of them allocate or format anything. All costs of rendering — name
// sorting, label escaping, float formatting — are paid at scrape time by
// WritePrometheus.
//
// # Traces
//
// A Tracer serializes timestamped events as JSON lines. Timestamps are
// monotonic-clock offsets from the tracer's creation, so spans measured
// across a wall-clock adjustment stay correct. A nil *Tracer is valid and
// drops everything, so instrumented code never nil-checks.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n is a delta, never negative by construction of the type).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc and Dec adjust the gauge by ±1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets with explicit
// upper bounds, tracking the total sum and count — the Prometheus
// histogram model. Observations are lock-free and allocation-free.
type Histogram struct {
	// upper holds the sorted finite bucket bounds; counts has one extra
	// slot for the implicit +Inf bucket.
	upper   []float64
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (≤ ~20) and the scan touches one
	// cache line or two — cheaper than branch-missing a binary search.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns the cumulative bucket counts (one per finite bound,
// plus +Inf last) and the sum, each read atomically. The buckets are not
// a consistent cut with respect to concurrent Observes — Prometheus
// scrapes tolerate that — but each value is itself coherent, and the
// renderer derives _count from the +Inf bucket so that invariant holds on
// every scrape.
func (h *Histogram) snapshot() (cum []uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.Sum()
}

// ExpBuckets returns n bucket bounds starting at start and multiplying by
// factor — the standard shape for durations and sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n bucket bounds starting at start and stepping by
// width — the shape for bounded ratios.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		panic("telemetry: LinearBuckets needs n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// DurationBuckets spans 100 µs to ~100 s in half-decade steps — wide
// enough for a per-tensor decode and a whole throttled model upload to
// land in interior buckets.
var DurationBuckets = []float64{
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 25, 50, 100,
}

// ByteBuckets spans 1 KiB to 256 MiB in ×4 steps — update wire sizes from
// a toy profile to a pooled-retention-limit model.
var ByteBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

// RatioBuckets splits [0, 1] into tenths for overlap-style ratios.
var RatioBuckets = LinearBuckets(0.1, 0.1, 10)

// metricType is a family's Prometheus TYPE.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labeled instance within a family. Exactly one of the
// value fields is set, matching the family type (fn only for gauge
// families registered through GaugeFunc).
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series         // registration order (render preserves it)
	index  map[string]*series // label-key → series
	// buckets pins the bounds every histogram series in the family shares,
	// so a second registration with different buckets is caught.
	buckets []float64
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is unusable; call NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the pipeline's built-in
// instrumentation (flserve, core stage timers, sched pool gauges)
// registers into — the one a fedsz-serve -metrics-addr listener exposes.
func Default() *Registry { return defaultRegistry }

// labelKey serializes a label set into a map key. Labels are assumed
// pre-sorted by getFamily.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	n := 0
	for _, l := range labels {
		n += len(l.Key) + len(l.Value) + 2
	}
	b := make([]byte, 0, n)
	for _, l := range labels {
		b = append(b, l.Key...)
		b = append(b, 1)
		b = append(b, l.Value...)
		b = append(b, 2)
	}
	return string(b)
}

// validName checks the Prometheus metric/label-name grammar.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || (!label && r == ':')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// sortedLabels returns labels sorted by key, validated, copied.
func sortedLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for i, l := range out {
		if !validName(l.Key, true) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Key))
		}
		if i > 0 && out[i-1].Key == l.Key {
			panic(fmt.Sprintf("telemetry: duplicate label name %q", l.Key))
		}
	}
	return out
}

// getFamily returns the family for (name, typ, help), creating it on first
// use and panicking on a type or help mismatch with a previous
// registration — silent divergence would corrupt the exposition.
func (r *Registry) getFamily(name, help string, typ metricType) *family {
	if !validName(name, false) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, index: map[string]*series{}}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	if f.help != help {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with different help", name))
	}
	return f
}

// Counter returns the counter for (name, labels), creating the family and
// series on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	ls := sortedLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeCounter)
	key := labelKey(ls)
	if s, ok := f.index[key]; ok {
		return s.c
	}
	s := &series{labels: ls, c: &Counter{}}
	f.index[key] = s
	f.series = append(f.series, s)
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	ls := sortedLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeGauge)
	key := labelKey(ls)
	if s, ok := f.index[key]; ok {
		if s.g == nil {
			panic(fmt.Sprintf("telemetry: gauge %q series registered as gauge func", name))
		}
		return s.g
	}
	s := &series{labels: ls, g: &Gauge{}}
	f.index[key] = s
	f.series = append(f.series, s)
	return s.g
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// scrape time — the fit for exporting counters a subsystem already keeps
// (pool hit/miss totals, queue depths) without shadow bookkeeping. A
// series that already exists keeps its original fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	ls := sortedLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeGauge)
	key := labelKey(ls)
	if _, ok := f.index[key]; ok {
		return
	}
	s := &series{labels: ls, fn: fn}
	f.index[key] = s
	f.series = append(f.series, s)
}

// Histogram returns the histogram for (name, labels) with the given finite
// bucket upper bounds (+Inf is implicit), creating it on first use. Every
// series of one family must share the same buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	ls := sortedLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, typeHistogram)
	if f.buckets == nil {
		b := make([]float64, 0, len(buckets))
		for _, v := range buckets {
			if !math.IsInf(v, +1) {
				b = append(b, v)
			}
		}
		sort.Float64s(b)
		for i := 1; i < len(b); i++ {
			if b[i] == b[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q has duplicate bucket %g", name, b[i]))
			}
		}
		if len(b) == 0 {
			panic(fmt.Sprintf("telemetry: histogram %q needs at least one finite bucket", name))
		}
		f.buckets = b
	} else if !sameBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("telemetry: histogram %q re-registered with different buckets", name))
	}
	key := labelKey(ls)
	if s, ok := f.index[key]; ok {
		return s.h
	}
	h := &Histogram{upper: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	s := &series{labels: ls, h: h}
	f.index[key] = s
	f.series = append(f.series, s)
	return h
}

// sameBuckets compares a family's canonical bounds with a newly supplied
// list (order-insensitive, +Inf ignored).
func sameBuckets(canon, supplied []float64) bool {
	b := make([]float64, 0, len(supplied))
	for _, v := range supplied {
		if !math.IsInf(v, +1) {
			b = append(b, v)
		}
	}
	sort.Float64s(b)
	if len(b) != len(canon) {
		return false
	}
	for i := range b {
		if b[i] != canon[i] {
			return false
		}
	}
	return true
}
