package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestGetOrCreateReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help", L("x", "1"))
	b := r.Counter("dup_total", "help", L("x", "1"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("dup_total", "help", L("x", "2"))
	if a == other {
		t.Fatal("distinct label values returned the same counter")
	}
	// Label order must not matter.
	h1 := r.Histogram("h", "help", []float64{1, 2}, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("h", "help", []float64{1, 2}, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order produced distinct histogram series")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "help")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("label name with colon did not panic")
		}
	}()
	r.Counter("ok_total", "help", L("a:b", "v"))
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 1.5, 7, 100} {
		h.Observe(v)
	}
	cum, sum := h.snapshot()
	// le=1: {0.5, 1}; le=5: +{1.5}; le=10: +{7}; +Inf: +{100}.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if want := 0.5 + 1 + 1.5 + 7 + 100; sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
}

func TestHistogramBucketMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "help", []float64{1, 2, 3})
	// Same bounds in another order, with an explicit +Inf: same family.
	r.Histogram("h", "help", []float64{3, math.Inf(1), 2, 1}, L("x", "y"))
	defer func() {
		if recover() == nil {
			t.Fatal("different buckets did not panic")
		}
	}()
	r.Histogram("h", "help", []float64{1, 2})
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	h := r.Histogram("dur", "dur", DurationBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%7) * 1e-3)
				r.Gauge("active", "g", L("w", string(rune('a'+w)))).Set(float64(i))
			}
		}(w)
	}
	stop := make(chan struct{})
	var scrapeErr error
	var sg sync.WaitGroup
	sg.Add(1)
	go func() {
		defer sg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				scrapeErr = err
				return
			}
			if _, err := ParseText(buf.Bytes()); err != nil {
				scrapeErr = err
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	sg.Wait()
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestGaugeFuncSampledAtScrape(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("sampled", "g", func() float64 { return v })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sampled 1\n") {
		t.Fatalf("first scrape missing value 1:\n%s", buf.String())
	}
	v = 42
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sampled 42\n") {
		t.Fatalf("second scrape missing value 42:\n%s", buf.String())
	}
}
