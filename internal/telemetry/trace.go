package telemetry

// Trace events: a JSONL timeline of what a run did, at the granularity
// metrics aggregate away — one line per connection, per update, per
// round. Timestamps are monotonic-clock offsets from the tracer's start
// (the time.Time the tracer captures carries Go's monotonic reading, so
// spans are immune to wall-clock steps), serialized in microseconds.
//
// Event lines look like:
//
//	{"t_us":1042,"event":"update","client":3,"wire_bytes":18231,"decode_us":912,"overlap":0.87}
//	{"t_us":52,"event":"conn","dur_us":20731,"remote":"127.0.0.1:51124","updates":4}
//
// "t_us", "event", and "dur_us" are reserved keys; attribute keys must
// not collide with them. Spans carry t_us of their start and dur_us of
// their duration, so a timeline viewer can lay them out without pairing
// begin/end records.

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value attribute on a trace event. Values are serialized
// with encoding/json; keep them to strings, numbers, and bools.
type Attr struct {
	Key   string
	Value any
}

// A is shorthand for constructing an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Tracer writes trace events to one io.Writer, each event a complete JSON
// line. Methods are safe for concurrent use; a nil *Tracer drops
// everything, so instrumented code calls unconditionally.
type Tracer struct {
	mu   sync.Mutex
	w    io.Writer
	base time.Time
	err  error
}

// NewTracer returns a tracer emitting to w. The caller retains ownership
// of w (close it after the run; the tracer never does).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, base: time.Now()}
}

// Err returns the first write error the tracer hit (events after an error
// are dropped), or nil.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Event emits one instantaneous event.
func (t *Tracer) Event(event string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.emit(event, time.Now(), -1, attrs)
}

// Span starts a timed span; call End on the result to emit it. The
// returned span's event line carries the start offset and the duration.
// A span from a nil tracer is nil and End on it is a no-op.
func (t *Tracer) Span(event string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, event: event, start: time.Now(), attrs: attrs}
}

// Span is one in-progress timed region.
type Span struct {
	t     *Tracer
	event string
	start time.Time
	attrs []Attr
}

// End emits the span with its measured duration, appending any extra
// attributes to those given at Span start. Safe on a nil span.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	all := s.attrs
	if len(attrs) > 0 {
		all = append(append([]Attr{}, s.attrs...), attrs...)
	}
	s.t.emit(s.event, s.start, time.Since(s.start), all)
}

// emit serializes one line. dur < 0 means "no dur_us field".
func (t *Tracer) emit(event string, start time.Time, dur time.Duration, attrs []Attr) {
	buf := make([]byte, 0, 128)
	buf = append(buf, `{"t_us":`...)
	buf = appendInt(buf, start.Sub(t.base).Microseconds())
	buf = append(buf, `,"event":`...)
	buf = appendJSON(buf, event)
	if dur >= 0 {
		buf = append(buf, `,"dur_us":`...)
		buf = appendInt(buf, dur.Microseconds())
	}
	for _, a := range attrs {
		buf = append(buf, ',')
		buf = appendJSON(buf, a.Key)
		buf = append(buf, ':')
		buf = appendJSON(buf, a.Value)
	}
	buf = append(buf, '}', '\n')

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(buf); err != nil {
		t.err = err
	}
}

func appendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// appendJSON marshals v onto dst, substituting null for unmarshalable
// values (a trace must never fail the traced operation).
func appendJSON(dst []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return append(dst, "null"...)
	}
	return append(dst, b...)
}
