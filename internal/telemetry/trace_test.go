package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestTracerEventsAndSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Event("hello", A("client", 7), A("addr", "127.0.0.1:1"), A("ok", true))
	sp := tr.Span("work", A("phase", "decode"))
	time.Sleep(2 * time.Millisecond)
	sp.End(A("bytes", 1024))

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	ev := lines[0]
	if ev["event"] != "hello" || ev["client"] != float64(7) || ev["addr"] != "127.0.0.1:1" || ev["ok"] != true {
		t.Fatalf("event line wrong: %v", ev)
	}
	if _, hasDur := ev["dur_us"]; hasDur {
		t.Fatal("instant event has dur_us")
	}
	span := lines[1]
	if span["event"] != "work" || span["phase"] != "decode" || span["bytes"] != float64(1024) {
		t.Fatalf("span line wrong: %v", span)
	}
	if d := span["dur_us"].(float64); d < 1000 {
		t.Fatalf("span dur_us = %v, want >= 1000 (slept 2 ms)", d)
	}
	// Span t_us is the span's start, which precedes its end-time emission.
	if span["t_us"].(float64) < ev["t_us"].(float64) {
		t.Fatalf("span started before the earlier event: %v < %v", span["t_us"], ev["t_us"])
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Event("dropped")
	tr.Span("dropped").End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestTracerStopsAfterWriteError(t *testing.T) {
	w := &failWriter{}
	tr := NewTracer(w)
	tr.Event("one")
	tr.Event("two")
	if w.n != 1 {
		t.Fatalf("writer called %d times, want 1 (events after an error must drop)", w.n)
	}
	if tr.Err() == nil {
		t.Fatal("Err() lost the write error")
	}
}

func TestTracerConcurrentLinesStayWhole(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Event("e", A("g", g), A("i", i), A("pad", strings.Repeat("x", 64)))
			}
		}(g)
	}
	wg.Wait()
	lines := decodeLines(t, &buf)
	if len(lines) != 8*200 {
		t.Fatalf("got %d intact lines, want %d", len(lines), 8*200)
	}
}
