package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/sched"
)

// Binary serialization for tensors and state dicts. This replaces the
// paper's pickle step with a deterministic, self-describing little-endian
// format:
//
//	StateDict  := magic(u32) count(u32) Entry*
//	Entry      := nameLen(u16) name kind(u8) rank(u8) dims(u32*rank) f32*
//
// The format is intentionally simple: the FedSZ pipeline compresses the
// *contents* before serialization, so no cleverness is needed here.

const stateDictMagic = 0x46645A31 // "FdZ1"

var (
	// ErrBadFormat is returned when deserialization encounters a malformed
	// or truncated buffer.
	ErrBadFormat = errors.New("tensor: malformed state dict encoding")
)

// AppendFloat32s appends the little-endian bytes of vals to dst.
func AppendFloat32s(dst []byte, vals []float32) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 4*len(vals))...)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[off+4*i:], math.Float32bits(v))
	}
	return dst
}

// DecodeFloat32s decodes n little-endian float32 values from src.
func DecodeFloat32s(src []byte, n int) ([]float32, error) {
	if len(src) < 4*n {
		return nil, ErrBadFormat
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return out, nil
}

// Float32sToBytes converts vals to their little-endian byte representation.
func Float32sToBytes(vals []float32) []byte {
	return AppendFloat32s(make([]byte, 0, 4*len(vals)), vals)
}

// BytesToFloat32s converts a little-endian byte buffer back to float32
// values. len(b) must be a multiple of 4.
func BytesToFloat32s(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, ErrBadFormat
	}
	return DecodeFloat32s(b, len(b)/4)
}

// Marshal serializes the state dict to the binary format above.
func (sd *StateDict) Marshal() []byte {
	return sd.MarshalAppend(make([]byte, 0, sd.MarshalSize()))
}

// MarshalSize returns the exact byte length Marshal produces.
func (sd *StateDict) MarshalSize() int {
	size := 8
	for _, e := range sd.entries {
		size += 2 + len(e.Name) + 2 + 4*len(e.Tensor.Shape) + 4*e.Tensor.NumElems()
	}
	return size
}

// MarshalAppend serializes the state dict, appending to dst — the
// pool-friendly variant (size the buffer with MarshalSize).
func (sd *StateDict) MarshalAppend(dst []byte) []byte {
	out := dst
	out = binary.LittleEndian.AppendUint32(out, stateDictMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(sd.entries)))
	for _, e := range sd.entries {
		if len(e.Name) > math.MaxUint16 {
			panic(fmt.Sprintf("tensor: entry name too long (%d bytes)", len(e.Name)))
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Name)))
		out = append(out, e.Name...)
		out = append(out, byte(e.Kind), byte(len(e.Tensor.Shape)))
		for _, d := range e.Tensor.Shape {
			out = binary.LittleEndian.AppendUint32(out, uint32(d))
		}
		out = AppendFloat32s(out, e.Tensor.Data)
	}
	return out
}

// UnmarshalStateDict parses a buffer produced by Marshal.
func UnmarshalStateDict(data []byte) (*StateDict, error) {
	if len(data) < 8 {
		return nil, ErrBadFormat
	}
	if binary.LittleEndian.Uint32(data) != stateDictMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	pos := 8
	sd := NewStateDict()
	// fail recycles the pooled buffers of entries decoded so far: a
	// malformed stream from an untrusted client must not bleed warm pool
	// capacity entry by entry.
	fail := func(err error) (*StateDict, error) {
		for _, e := range sd.entries {
			sched.PutFloats(e.Tensor.Data)
		}
		return nil, err
	}
	for i := 0; i < count; i++ {
		if pos+2 > len(data) {
			return fail(ErrBadFormat)
		}
		nameLen := int(binary.LittleEndian.Uint16(data[pos:]))
		pos += 2
		if pos+nameLen+2 > len(data) {
			return fail(ErrBadFormat)
		}
		name := string(data[pos : pos+nameLen])
		pos += nameLen
		kind := Kind(data[pos])
		rank := int(data[pos+1])
		pos += 2
		if pos+4*rank > len(data) {
			return fail(ErrBadFormat)
		}
		shape := make([]int, rank)
		n := 1
		for d := range shape {
			shape[d] = int(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
			n *= shape[d]
		}
		if n < 0 || pos+4*n > len(data) {
			return fail(ErrBadFormat)
		}
		// Decode into a pool-backed buffer: metadata-partition tensors then
		// follow the same recycle discipline as the lossy partition's.
		vals := sched.GetFloats(n)[:n]
		for j := range vals {
			vals[j] = math.Float32frombits(binary.LittleEndian.Uint32(data[pos+4*j:]))
		}
		pos += 4 * n
		if sd.Get(name) != nil {
			sched.PutFloats(vals)
			return fail(fmt.Errorf("%w: duplicate entry %q", ErrBadFormat, name))
		}
		sd.Add(name, kind, FromData(vals, shape...))
	}
	return sd, nil
}
