// Package tensor provides the float32 tensor and model state-dictionary
// types shared by the neural-network substrate, the FedSZ compression
// pipeline, and the federated-learning layer.
//
// A StateDict is the Go analogue of a PyTorch state_dict(): an ordered
// collection of named tensors, each tagged with a Kind that the FedSZ
// partitioner uses to route tensors to the lossy or lossless path.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/sched"
)

// Kind classifies a state-dict entry for the FedSZ partitioning rule
// (paper Algorithm 1, line 4).
type Kind uint8

const (
	// KindWeight marks trainable dense weight tensors (conv kernels, dense
	// matrices) — the lossy-compressible bulk of a model.
	KindWeight Kind = iota
	// KindBias marks trainable bias vectors.
	KindBias
	// KindRunningStat marks batch-norm running means/variances and similar
	// non-trainable buffers that must survive exactly.
	KindRunningStat
	// KindScalarMeta marks scalar bookkeeping values (step counters,
	// num_batches_tracked, etc.).
	KindScalarMeta
)

// String returns the PyTorch-flavoured name of the kind.
func (k Kind) String() string {
	switch k {
	case KindWeight:
		return "weight"
	case KindBias:
		return "bias"
	case KindRunningStat:
		return "running_stat"
	case KindScalarMeta:
		return "scalar_meta"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Tensor is a dense float32 array with a shape. Data is stored row-major.
// The zero value is an empty tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps data (not copied) with a shape. The product of shape
// dimensions must equal len(data).
func FromData(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, have %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// NumElems returns the number of elements.
func (t *Tensor) NumElems() int { return len(t.Data) }

// SizeBytes returns the storage footprint of the raw data in bytes.
func (t *Tensor) SizeBytes() int { return 4 * len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.Data))
	copy(d, t.Data)
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: d}
}

// Reshape returns a view with a new shape sharing the same backing data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d != shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Range returns the minimum and maximum values; (0,0) for an empty tensor.
func (t *Tensor) Range() (min, max float32) {
	if len(t.Data) == 0 {
		return 0, 0
	}
	min, max = t.Data[0], t.Data[0]
	for _, v := range t.Data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// L2Norm returns the Euclidean norm of the flattened data.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Entry is one named tensor in a StateDict.
type Entry struct {
	Name   string
	Kind   Kind
	Tensor *Tensor
}

// StateDict is an ordered collection of named tensors. Order is significant:
// serialization, aggregation, and compression all iterate entries in
// insertion order, mirroring Python's ordered state_dict.
type StateDict struct {
	entries []Entry
	byName  map[string]int
}

// NewStateDict returns an empty state dict.
func NewStateDict() *StateDict {
	return &StateDict{byName: make(map[string]int)}
}

// Add appends a named tensor. It panics on duplicate names: state dicts are
// construction-time artifacts and duplicates indicate a model-definition bug.
func (sd *StateDict) Add(name string, kind Kind, t *Tensor) {
	if _, dup := sd.byName[name]; dup {
		panic(fmt.Sprintf("statedict: duplicate entry %q", name))
	}
	sd.byName[name] = len(sd.entries)
	sd.entries = append(sd.entries, Entry{Name: name, Kind: kind, Tensor: t})
}

// Get returns the tensor registered under name, or nil if absent.
func (sd *StateDict) Get(name string) *Tensor {
	if i, ok := sd.byName[name]; ok {
		return sd.entries[i].Tensor
	}
	return nil
}

// Entries returns the ordered entry list. The slice must not be mutated.
func (sd *StateDict) Entries() []Entry { return sd.entries }

// Len returns the number of entries.
func (sd *StateDict) Len() int { return len(sd.entries) }

// NumParams returns the total element count across all entries.
func (sd *StateDict) NumParams() int {
	n := 0
	for _, e := range sd.entries {
		n += e.Tensor.NumElems()
	}
	return n
}

// SizeBytes returns the total raw float32 payload size.
func (sd *StateDict) SizeBytes() int { return 4 * sd.NumParams() }

// Clone returns a deep copy of the state dict.
func (sd *StateDict) Clone() *StateDict {
	out := NewStateDict()
	for _, e := range sd.entries {
		out.Add(e.Name, e.Kind, e.Tensor.Clone())
	}
	return out
}

// Zero returns a same-shaped state dict with all values zeroed, preserving
// names and kinds — the accumulator shape used by FedAvg.
func (sd *StateDict) Zero() *StateDict {
	out := NewStateDict()
	for _, e := range sd.entries {
		out.Add(e.Name, e.Kind, New(e.Tensor.Shape...))
	}
	return out
}

// ZeroInto is Zero reusing dst's storage when dst is structurally
// compatible with sd (same entry names and sizes). When dst is nil or
// incompatible, a new dict is built over buffers drawn from the shared
// float32 pool; recycle it via core.Release once the accumulator is dead.
// Either way the returned dict is all-zero with sd's names and kinds — the
// allocation-free FedAvg accumulator path.
func (sd *StateDict) ZeroInto(dst *StateDict) *StateDict {
	if dst != nil && dst.CheckCompatible(sd) == nil {
		for _, e := range dst.entries {
			clear(e.Tensor.Data)
		}
		return dst
	}
	out := NewStateDict()
	for _, e := range sd.entries {
		n := e.Tensor.NumElems()
		buf := sched.GetFloats(n)[:n]
		clear(buf)
		out.Add(e.Name, e.Kind, FromData(buf, e.Tensor.Shape...))
	}
	return out
}

// CloneInto is Clone reusing dst's storage when dst is structurally
// compatible with sd; otherwise the copy is built over pooled float32
// buffers (recycle via core.Release). Shapes are taken from sd when a new
// dict is built and left as dst's when reusing — compatibility only
// requires matching names and element counts.
func (sd *StateDict) CloneInto(dst *StateDict) *StateDict {
	if dst != nil && dst.CheckCompatible(sd) == nil {
		for i, e := range dst.entries {
			copy(e.Tensor.Data, sd.entries[i].Tensor.Data)
		}
		return dst
	}
	out := NewStateDict()
	for _, e := range sd.entries {
		n := e.Tensor.NumElems()
		buf := sched.GetFloats(n)[:n]
		copy(buf, e.Tensor.Data)
		out.Add(e.Name, e.Kind, FromData(buf, e.Tensor.Shape...))
	}
	return out
}

// AddScaled accumulates alpha * other into sd element-wise. The two dicts
// must have identical structure.
func (sd *StateDict) AddScaled(other *StateDict, alpha float32) error {
	if err := sd.CheckCompatible(other); err != nil {
		return err
	}
	for i, e := range sd.entries {
		src := other.entries[i].Tensor.Data
		dst := e.Tensor.Data
		for j := range dst {
			dst[j] += alpha * src[j]
		}
	}
	return nil
}

// Scale multiplies every value by alpha.
func (sd *StateDict) Scale(alpha float32) {
	for _, e := range sd.entries {
		d := e.Tensor.Data
		for j := range d {
			d[j] *= alpha
		}
	}
}

// CopyFrom overwrites sd's values with other's. Structures must match.
func (sd *StateDict) CopyFrom(other *StateDict) error {
	if err := sd.CheckCompatible(other); err != nil {
		return err
	}
	for i, e := range sd.entries {
		copy(e.Tensor.Data, other.entries[i].Tensor.Data)
	}
	return nil
}

// CheckCompatible reports whether other has the same structure as sd —
// matching entry count, names in order, and per-entry element counts — the
// precondition for every in-place accumulator operation. Callers that would
// otherwise silently fall back to reallocation (ZeroInto, CloneInto) use it
// to fail loudly instead when structure drift indicates a bug.
func (sd *StateDict) CheckCompatible(other *StateDict) error {
	if len(sd.entries) != len(other.entries) {
		return fmt.Errorf("statedict: entry count mismatch %d != %d", len(sd.entries), len(other.entries))
	}
	for i, e := range sd.entries {
		o := other.entries[i]
		if e.Name != o.Name {
			return fmt.Errorf("statedict: entry %d name mismatch %q != %q", i, e.Name, o.Name)
		}
		if e.Tensor.NumElems() != o.Tensor.NumElems() {
			return fmt.Errorf("statedict: entry %q size mismatch %d != %d", e.Name, e.Tensor.NumElems(), o.Tensor.NumElems())
		}
	}
	return nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two structurally identical state dicts — the verification metric for
// error-bounded round trips.
func (sd *StateDict) MaxAbsDiff(other *StateDict) (float64, error) {
	if err := sd.CheckCompatible(other); err != nil {
		return 0, err
	}
	var m float64
	for i, e := range sd.entries {
		o := other.entries[i].Tensor.Data
		for j, v := range e.Tensor.Data {
			d := math.Abs(float64(v) - float64(o[j]))
			if d > m {
				m = d
			}
		}
	}
	return m, nil
}
