package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.NumElems() != 24 {
		t.Fatalf("NumElems = %d", tt.NumElems())
	}
	if tt.SizeBytes() != 96 {
		t.Fatalf("SizeBytes = %d", tt.SizeBytes())
	}
	tt.Set(3.5, 1, 2, 3)
	if got := tt.At(1, 2, 3); got != 3.5 {
		t.Fatalf("At = %v", got)
	}
	// Row-major layout: offset of [1,2,3] is 1*12 + 2*4 + 3 = 23.
	if tt.Data[23] != 3.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestIndexPanics(t *testing.T) {
	tt := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("index %v should panic", idx)
				}
			}()
			tt.At(idx...)
		}()
	}
}

func TestFromDataShapeCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched FromData should panic")
		}
	}()
	FromData(make([]float32, 5), 2, 3)
}

func TestReshapeSharesData(t *testing.T) {
	a := New(6)
	b := a.Reshape(2, 3)
	b.Set(9, 1, 2)
	if a.Data[5] != 9 {
		t.Fatal("reshape must share backing data")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(3)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 7
	if a.Data[0] != 1 {
		t.Fatal("clone must not alias")
	}
}

func TestRangeAndNorm(t *testing.T) {
	tt := FromData([]float32{-2, 0, 3, 1}, 4)
	lo, hi := tt.Range()
	if lo != -2 || hi != 3 {
		t.Fatalf("range = (%v,%v)", lo, hi)
	}
	want := math.Sqrt(4 + 9 + 1)
	if got := tt.L2Norm(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("L2Norm = %v want %v", got, want)
	}
	empty := New(0)
	if lo, hi := empty.Range(); lo != 0 || hi != 0 {
		t.Fatal("empty range should be (0,0)")
	}
}

func makeDict() *StateDict {
	sd := NewStateDict()
	w := FromData([]float32{0.1, -0.2, 0.3, 0.4, -0.5, 0.6}, 2, 3)
	sd.Add("conv1.weight", KindWeight, w)
	sd.Add("conv1.bias", KindBias, FromData([]float32{0.01, -0.02}, 2))
	sd.Add("bn1.running_mean", KindRunningStat, FromData([]float32{1.5, 2.5}, 2))
	sd.Add("bn1.num_batches", KindScalarMeta, FromData([]float32{42}, 1))
	return sd
}

func TestStateDictBasics(t *testing.T) {
	sd := makeDict()
	if sd.Len() != 4 {
		t.Fatalf("Len = %d", sd.Len())
	}
	if sd.NumParams() != 11 {
		t.Fatalf("NumParams = %d", sd.NumParams())
	}
	if sd.SizeBytes() != 44 {
		t.Fatalf("SizeBytes = %d", sd.SizeBytes())
	}
	if sd.Get("conv1.bias") == nil || sd.Get("nope") != nil {
		t.Fatal("Get lookup broken")
	}
	// Order preserved.
	names := []string{"conv1.weight", "conv1.bias", "bn1.running_mean", "bn1.num_batches"}
	for i, e := range sd.Entries() {
		if e.Name != names[i] {
			t.Fatalf("order violated at %d: %s", i, e.Name)
		}
	}
}

func TestStateDictDuplicatePanics(t *testing.T) {
	sd := makeDict()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add should panic")
		}
	}()
	sd.Add("conv1.weight", KindWeight, New(1))
}

func TestAggregationOps(t *testing.T) {
	a := makeDict()
	b := a.Clone()
	acc := a.Zero()
	if err := acc.AddScaled(a, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := acc.AddScaled(b, 0.5); err != nil {
		t.Fatal(err)
	}
	// 0.5a + 0.5a == a
	d, err := acc.MaxAbsDiff(a)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-6 {
		t.Fatalf("FedAvg identity broken: maxdiff %v", d)
	}
	acc.Scale(2)
	d, _ = acc.MaxAbsDiff(a)
	if d == 0 {
		t.Fatal("Scale had no effect")
	}
	if err := acc.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	d, _ = acc.MaxAbsDiff(a)
	if d != 0 {
		t.Fatal("CopyFrom not exact")
	}
}

func TestIncompatibleDicts(t *testing.T) {
	a := makeDict()
	b := NewStateDict()
	b.Add("x", KindWeight, New(3))
	if err := a.AddScaled(b, 1); err == nil {
		t.Fatal("want structural mismatch error")
	}
	if _, err := a.MaxAbsDiff(b); err == nil {
		t.Fatal("want structural mismatch error")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	sd := makeDict()
	buf := sd.Marshal()
	got, err := UnmarshalStateDict(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sd.Len() {
		t.Fatalf("Len %d != %d", got.Len(), sd.Len())
	}
	for i, e := range sd.Entries() {
		g := got.Entries()[i]
		if g.Name != e.Name || g.Kind != e.Kind {
			t.Fatalf("entry %d metadata mismatch", i)
		}
		if len(g.Tensor.Shape) != len(e.Tensor.Shape) {
			t.Fatalf("entry %d rank mismatch", i)
		}
		for j := range e.Tensor.Shape {
			if g.Tensor.Shape[j] != e.Tensor.Shape[j] {
				t.Fatalf("entry %d shape mismatch", i)
			}
		}
		for j := range e.Tensor.Data {
			if g.Tensor.Data[j] != e.Tensor.Data[j] {
				t.Fatalf("entry %d data mismatch at %d", i, j)
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, // bad magic
	}
	for i, c := range cases {
		if _, err := UnmarshalStateDict(c); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
	// Truncated valid prefix.
	full := makeDict().Marshal()
	if _, err := UnmarshalStateDict(full[:len(full)-3]); err == nil {
		t.Fatal("truncated buffer should fail")
	}
}

func TestFloat32BytesRoundTrip(t *testing.T) {
	vals := []float32{0, -0, 1.5, float32(math.Inf(1)), float32(math.NaN()), -3.25e-12}
	b := Float32sToBytes(vals)
	got, err := BytesToFloat32s(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float32bits(got[i]) != math.Float32bits(vals[i]) {
			t.Fatalf("bit-exactness violated at %d", i)
		}
	}
	if _, err := BytesToFloat32s([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for non-multiple-of-4 buffer")
	}
}

// Property: marshal/unmarshal is the identity for random dicts.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		sd := NewStateDict()
		entries := int(n%8) + 1
		for i := 0; i < entries; i++ {
			sz := rng.IntN(64) + 1
			data := make([]float32, sz)
			for j := range data {
				data[j] = float32(rng.NormFloat64())
			}
			sd.Add(string(rune('a'+i))+".weight", Kind(rng.IntN(4)), FromData(data, sz))
		}
		got, err := UnmarshalStateDict(sd.Marshal())
		if err != nil {
			return false
		}
		d, err := got.MaxAbsDiff(sd)
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	sd := NewStateDict()
	data := make([]float32, 1<<18)
	for i := range data {
		data[i] = float32(i)
	}
	sd.Add("w", KindWeight, FromData(data, len(data)))
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sd.Marshal()
	}
}

func TestZeroIntoReusesCompatibleDict(t *testing.T) {
	sd := makeDict()
	fresh := sd.ZeroInto(nil)
	for _, e := range fresh.Entries() {
		for _, v := range e.Tensor.Data {
			if v != 0 {
				t.Fatalf("ZeroInto(nil): %s not zeroed", e.Name)
			}
		}
	}
	// Scribble on the accumulator, then rezero in place: same dict, same
	// backing arrays, all-zero contents.
	fresh.Get("conv1.weight").Fill(3)
	back := &fresh.Entries()[0].Tensor.Data[0]
	reused := sd.ZeroInto(fresh)
	if reused != fresh {
		t.Fatal("ZeroInto should reuse a compatible dst")
	}
	if &reused.Entries()[0].Tensor.Data[0] != back {
		t.Fatal("ZeroInto reallocated a compatible dst's storage")
	}
	for _, e := range reused.Entries() {
		for _, v := range e.Tensor.Data {
			if v != 0 {
				t.Fatalf("ZeroInto(dst): %s not rezeroed", e.Name)
			}
		}
	}
	// Incompatible dst (different entry set) must be replaced, not reused.
	other := NewStateDict()
	other.Add("different", KindWeight, New(3))
	if got := sd.ZeroInto(other); got == other {
		t.Fatal("ZeroInto reused an incompatible dst")
	}
}

func TestCloneIntoCopiesAndReuses(t *testing.T) {
	sd := makeDict()
	c1 := sd.CloneInto(nil)
	if d, err := sd.MaxAbsDiff(c1); err != nil || d != 0 {
		t.Fatalf("CloneInto(nil) diff=%v err=%v", d, err)
	}
	// Mutating the clone must not touch the source.
	c1.Get("conv1.weight").Fill(9)
	if sd.Get("conv1.weight").Data[0] == 9 {
		t.Fatal("CloneInto(nil) shares storage with source")
	}
	back := &c1.Entries()[0].Tensor.Data[0]
	c2 := sd.CloneInto(c1)
	if c2 != c1 || &c2.Entries()[0].Tensor.Data[0] != back {
		t.Fatal("CloneInto should reuse a compatible dst in place")
	}
	if d, err := sd.MaxAbsDiff(c2); err != nil || d != 0 {
		t.Fatalf("CloneInto(dst) diff=%v err=%v", d, err)
	}
}
