package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/tensor"
)

// fuzzSeeds builds a deterministic corpus: a valid framed stream plus
// truncations, bit flips, and targeted header damage.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	rng := rand.New(rand.NewPCG(201, 202))
	sd := tensor.NewStateDict()
	w := tensor.FromData(eblctest.WeightLike(rng, 4096), 4096)
	sd.Add("w.weight", tensor.KindWeight, w)
	b := tensor.New(16)
	sd.Add("w.bias", tensor.KindBias, b)
	stream, _, err := core.Compress(sd, core.Options{LossyParams: ebcl.Rel(1e-2)})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteStream(stream); err != nil {
		tb.Fatal(err)
	}
	framed := buf.Bytes()

	seeds := [][]byte{append([]byte(nil), framed...)}
	step := len(framed)/40 + 1
	for l := 0; l < len(framed); l += step {
		seeds = append(seeds, append([]byte(nil), framed[:l]...))
	}
	for trial := 0; trial < 32; trial++ {
		bad := append([]byte(nil), framed...)
		for f := 0; f < rng.IntN(3)+1; f++ {
			bad[rng.IntN(len(bad))] ^= byte(rng.IntN(255) + 1)
		}
		seeds = append(seeds, bad)
	}
	// Targeted damage: magic, version, first frame kind, first length byte.
	for _, off := range []int{0, 4, 5, 6} {
		bad := append([]byte(nil), framed...)
		bad[off] ^= 0xFF
		seeds = append(seeds, bad)
	}
	return seeds
}

// TestWireReaderCorpus asserts every seed either reads to a clean EOF (the
// pristine stream) or fails wrapping core.ErrCorrupt — never panics.
func TestWireReaderCorpus(t *testing.T) {
	for i, seed := range fuzzSeeds(t) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: reader panicked: %v", i, r)
				}
			}()
			_, err := io.ReadAll(NewReader(bytes.NewReader(seed)))
			if err != nil && !errors.Is(err, core.ErrCorrupt) {
				t.Errorf("seed %d: error %v does not wrap core.ErrCorrupt", i, err)
			}
		}()
	}
}

// FuzzWireReader drives the de-framer with arbitrary bytes. Invariants: no
// panic, no hang (allocation is bounded by input length, so ReadAll
// terminates), and any error wraps core.ErrCorrupt. A clean EOF must also
// leave the payload decodable only through the normal core path — it is
// fed onward to the FedSZ decoder, which must itself fail cleanly.
func FuzzWireReader(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		payload, err := io.ReadAll(r)
		if err != nil {
			if !errors.Is(err, core.ErrCorrupt) {
				t.Fatalf("error %v does not wrap core.ErrCorrupt", err)
			}
			return
		}
		// CRC-clean stream: the payload must round through the FedSZ
		// decoder without panicking (errors are fine — the fuzzer can
		// forge valid framing around a garbage payload).
		if sd, _, derr := core.DecompressFrom(bytes.NewReader(payload)); derr == nil && sd == nil {
			t.Fatal("nil dict with nil error")
		}
	})
}
