// Package wire defines the length-framed, CRC-checked transport encoding
// that carries FedSZ streams over sockets.
//
// A wire stream is a fixed preamble followed by a sequence of frames:
//
//	Stream   := magic(u32 "FWR1") version(u8) Frame* TrailerFrame
//	Frame    := kind(u8) payloadLen(u32) payload crc(u32)
//
// All integers are little-endian. Each frame's crc is CRC-32 (IEEE) over
// kind, payloadLen, and payload, so corruption is caught frame-by-frame —
// before a damaged payload ever reaches the decoder. Frame kinds mirror
// the FedSZ stream's section layout (core.Sections):
//
//	FrameHeader   — the stream preamble through the path flags
//	FrameTensor   — one lossy tensor: name, kind, shape, compressed blob
//	FrameLossless — the lossless-partition section
//	FrameTrailer  — frame count, total payload bytes, whole-stream CRC
//
// The payload concatenation of the header/tensor/lossless frames is
// byte-for-byte the in-memory FedSZ stream, so Reader implements io.Reader
// over exactly that byte sequence and composes directly with
// core.DecompressFrom: the receiver decodes tensor i while frame i+1 is
// still crossing the network. The trailer carries a redundant whole-stream
// CRC and byte/frame counts, so truncation at a frame boundary — which
// per-frame CRCs cannot see — is also detected.
//
// Framing at tensor granularity (rather than one giant frame) is what
// bounds receiver memory: a conforming receiver needs one frame plus the
// decode in flight, never the whole update.
package wire

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// Frame kinds.
const (
	FrameHeader   = 0x01
	FrameTensor   = 0x02
	FrameLossless = 0x03
	FrameTrailer  = 0x04
)

const (
	streamMagic   = 0x46575231 // "FWR1"
	streamVersion = 1

	frameHeaderLen = 5  // kind + payloadLen
	trailerLen     = 16 // frames(u32) + payloadBytes(u64) + streamCRC(u32)

	// maxFramePayload bounds a declared frame length. Receive buffers grow
	// with bytes actually received (sched.ReadFullPooled), so this is a
	// sanity cap, not an allocation bound.
	maxFramePayload = 1 << 30
)

// corruptf wraps a framing violation as core.ErrCorrupt so transport and
// codec corruption surface through one sentinel.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: wire: %s", core.ErrCorrupt, fmt.Sprintf(format, args...))
}

// Writer emits a wire stream onto w. Frames may be written directly with
// WriteFrame, or a whole FedSZ stream at once with WriteStream. Close
// writes the trailer; a stream without its trailer is corrupt by
// definition, so senders must Close on success and just drop the
// connection on failure.
type Writer struct {
	w            io.Writer
	started      bool
	closed       bool
	frames       uint32
	payloadBytes uint64
	streamCRC    uint32
	scratch      []byte
}

// NewWriter returns a Writer emitting to w. Callers writing to an
// unbuffered destination (e.g. a net.Conn) should wrap it in a
// bufio.Writer and flush after Close.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame emits one frame. The preamble is written before the first
// frame.
func (w *Writer) WriteFrame(kind byte, payload []byte) error {
	if w.closed {
		return fmt.Errorf("wire: write after Close")
	}
	if len(payload) > maxFramePayload {
		return fmt.Errorf("wire: frame payload %d exceeds limit", len(payload))
	}
	if !w.started {
		var pre [5]byte
		binary.LittleEndian.PutUint32(pre[:], streamMagic)
		pre[4] = streamVersion
		if _, err := w.w.Write(pre[:]); err != nil {
			return fmt.Errorf("wire: preamble: %w", err)
		}
		w.started = true
	}
	var hdr [frameHeaderLen]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)

	// One Write per frame: header + payload + crc assembled in a reused
	// scratch buffer, so small frames do not cost three syscalls each.
	need := frameHeaderLen + len(payload) + 4
	if cap(w.scratch) < need {
		w.scratch = make([]byte, 0, need)
	}
	buf := w.scratch[:0]
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	w.scratch = buf[:0]
	if _, err := w.w.Write(buf); err != nil {
		return fmt.Errorf("wire: frame: %w", err)
	}
	if kind != FrameTrailer {
		w.frames++
		w.payloadBytes += uint64(len(payload))
		w.streamCRC = crc32.Update(w.streamCRC, crc32.IEEETable, payload)
	}
	return nil
}

// Close writes the trailer frame. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	var payload [trailerLen]byte
	binary.LittleEndian.PutUint32(payload[0:], w.frames)
	binary.LittleEndian.PutUint64(payload[4:], w.payloadBytes)
	binary.LittleEndian.PutUint32(payload[12:], w.streamCRC)
	if err := w.WriteFrame(FrameTrailer, payload[:]); err != nil {
		return err
	}
	w.closed = true
	return nil
}

// WriteSection frames one section of core's incremental encoder
// (CompressSections emit callback). Section kinds map 1:1 onto frame
// kinds, so compressing straight into a wire.Writer produces exactly the
// frames WriteStream would emit for the buffered stream — without the
// sender ever materializing that stream. The caller must Close the writer
// after a successful encode (and drop the connection on failure).
func (w *Writer) WriteSection(kind core.SectionKind, payload []byte) error {
	var fk byte
	switch kind {
	case core.SectionHeader:
		fk = FrameHeader
	case core.SectionTensor:
		fk = FrameTensor
	case core.SectionLossless:
		fk = FrameLossless
	default:
		return fmt.Errorf("wire: unknown section kind %d", kind)
	}
	return w.WriteFrame(fk, payload)
}

// WriteStream frames a complete serialized FedSZ stream — one header
// frame, one frame per lossy tensor, one lossless frame — and closes with
// the trailer. The receiver-side payload concatenation reproduces stream
// exactly.
func (w *Writer) WriteStream(stream []byte) error {
	secs, err := core.Sections(stream)
	if err != nil {
		return fmt.Errorf("wire: split stream: %w", err)
	}
	if err := w.WriteFrame(FrameHeader, secs.Header); err != nil {
		return err
	}
	for _, ts := range secs.Tensors {
		if err := w.WriteFrame(FrameTensor, ts); err != nil {
			return err
		}
	}
	if err := w.WriteFrame(FrameLossless, secs.Lossless); err != nil {
		return err
	}
	return w.Close()
}

// EncodeStream compresses sd straight into wire frames on w — the
// sender-side mirror of piping a Reader into core.DecompressFrom — and
// closes the stream with the trailer on success. Each finished tensor
// section ships while later tensors are still compressing on pool, so a
// throttled uplink overlaps the encode instead of waiting for it.
func EncodeStream(ctx context.Context, pool *sched.Pool, w *Writer, sd *tensor.StateDict, opts core.Options) (*core.Stats, error) {
	stats, err := core.CompressSections(ctx, pool, sd, opts, w.WriteSection)
	if err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return stats, nil
}

// FrameScanner reads a wire stream frame by frame: each Next returns one
// verified payload-bearing frame, and the terminal io.EOF means the
// trailer's stream-level CRC and counts checked out. This is the layer an
// ingest front-end routes on — frames can be dispatched to independent
// decoders without ever reassembling the full stream. Reader is a thin
// io.Reader built on top of it.
type FrameScanner struct {
	r            io.Reader
	started      bool
	done         bool
	frames       uint32
	payloadBytes uint64
	streamCRC    uint32
}

// NewFrameScanner returns a FrameScanner de-framing from r.
func NewFrameScanner(r io.Reader) *FrameScanner { return &FrameScanner{r: r} }

// Frames returns the number of payload-bearing frames consumed so far.
func (s *FrameScanner) Frames() int { return int(s.frames) }

// PayloadBytes returns the payload bytes consumed so far.
func (s *FrameScanner) PayloadBytes() int64 { return int64(s.payloadBytes) }

// WireBytes returns the encoded length of the wire stream consumed so far
// — preamble, frame headers, payloads, CRCs, and (once verified) the
// trailer frame. After the final io.EOF this is exactly the byte count
// the stream occupied on the wire, independent of how the underlying
// reader buffered — the accounting a multi-update connection needs, where
// read-ahead may already hold the next stream's bytes.
func (s *FrameScanner) WireBytes() int64 {
	n := int64(frameHeaderLen+4)*int64(s.frames) + int64(s.payloadBytes)
	if s.started {
		n += 5 // preamble
	}
	if s.done {
		n += frameHeaderLen + trailerLen + 4
	}
	return n
}

func (s *FrameScanner) readFull(buf []byte, context string) error {
	if _, err := io.ReadFull(s.r, buf); err != nil {
		return corruptf("%s: %v", context, err)
	}
	return nil
}

// Next reads and verifies the next frame. It returns the frame kind and
// its payload in a pooled buffer whose ownership transfers to the caller —
// release it with sched.PutBytes when done. After the trailer verifies,
// Next returns io.EOF (the trailer payload itself is consumed internally).
// All framing violations wrap core.ErrCorrupt; a scanner that returned an
// error must not be used again.
func (s *FrameScanner) Next() (byte, []byte, error) {
	if s.done {
		return 0, nil, io.EOF
	}
	if !s.started {
		var pre [5]byte
		if err := s.readFull(pre[:], "preamble"); err != nil {
			return 0, nil, err
		}
		if binary.LittleEndian.Uint32(pre[:]) != streamMagic {
			return 0, nil, corruptf("bad magic")
		}
		if pre[4] != streamVersion {
			return 0, nil, corruptf("unsupported version %d", pre[4])
		}
		s.started = true
	}
	var hdr [frameHeaderLen]byte
	if err := s.readFull(hdr[:], "frame header"); err != nil {
		return 0, nil, err
	}
	kind := hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, corruptf("frame payload %d exceeds limit", n)
	}
	switch kind {
	case FrameHeader, FrameTensor, FrameLossless:
		if s.frames == 0 && kind != FrameHeader {
			return 0, nil, corruptf("first frame kind 0x%02x, want header", kind)
		}
	case FrameTrailer:
		if n != trailerLen {
			return 0, nil, corruptf("trailer payload %d bytes, want %d", n, trailerLen)
		}
	default:
		return 0, nil, corruptf("unknown frame kind 0x%02x", kind)
	}

	// Receive the payload into a pooled buffer that grows with the bytes
	// actually received, so a hostile length cannot force a large
	// allocation up front.
	want := int(n)
	buf, err := sched.ReadFullPooled(s.r, want)
	if err != nil {
		return 0, nil, corruptf("frame payload: %v", err)
	}
	var crcBuf [4]byte
	if err := s.readFull(crcBuf[:], "frame crc"); err != nil {
		sched.PutBytes(buf)
		return 0, nil, err
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, buf)
	if crc != binary.LittleEndian.Uint32(crcBuf[:]) {
		sched.PutBytes(buf)
		return 0, nil, corruptf("frame crc mismatch (kind 0x%02x, %d bytes)", kind, want)
	}

	if kind == FrameTrailer {
		frames := binary.LittleEndian.Uint32(buf[0:])
		payloadBytes := binary.LittleEndian.Uint64(buf[4:])
		streamCRC := binary.LittleEndian.Uint32(buf[12:])
		sched.PutBytes(buf)
		if frames != s.frames {
			return 0, nil, corruptf("trailer frame count %d, received %d", frames, s.frames)
		}
		if payloadBytes != s.payloadBytes {
			return 0, nil, corruptf("trailer payload bytes %d, received %d", payloadBytes, s.payloadBytes)
		}
		if streamCRC != s.streamCRC {
			return 0, nil, corruptf("stream crc mismatch")
		}
		s.done = true
		return 0, nil, io.EOF
	}
	s.frames++
	s.payloadBytes += uint64(want)
	s.streamCRC = crc32.Update(s.streamCRC, crc32.IEEETable, buf)
	return kind, buf, nil
}

// Reader de-frames a wire stream from r, implementing io.Reader over the
// reassembled payload byte sequence (the FedSZ stream). Every frame's CRC
// is verified before any of its bytes are surfaced, and the trailer's
// stream-level CRC and counts are verified before the final io.EOF, so a
// caller that reaches io.EOF has read an intact stream. All framing
// violations wrap core.ErrCorrupt.
type Reader struct {
	s    FrameScanner
	done bool
	err  error
	buf  []byte // current frame payload (pooled)
	off  int
}

// NewReader returns a Reader de-framing from r.
func NewReader(r io.Reader) *Reader { return &Reader{s: FrameScanner{r: r}} }

// Frames returns the number of payload-bearing frames consumed so far.
func (r *Reader) Frames() int { return r.s.Frames() }

// PayloadBytes returns the reassembled payload bytes consumed so far.
func (r *Reader) PayloadBytes() int64 { return r.s.PayloadBytes() }

// WireBytes returns the encoded length of the wire stream consumed so far;
// see FrameScanner.WireBytes.
func (r *Reader) WireBytes() int64 { return r.s.WireBytes() }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	for {
		if r.err != nil {
			return 0, r.err
		}
		if r.off < len(r.buf) {
			n := copy(p, r.buf[r.off:])
			r.off += n
			return n, nil
		}
		if r.done {
			return 0, io.EOF
		}
		sched.PutBytes(r.buf)
		r.buf, r.off = nil, 0
		_, buf, err := r.s.Next()
		if err == io.EOF {
			r.done = true
			continue
		}
		if err != nil {
			r.fail(err)
			return 0, err
		}
		r.buf = buf
		if len(p) == 0 {
			return 0, nil
		}
	}
}

// fail records a terminal error and releases the receive buffer.
func (r *Reader) fail(err error) {
	r.err = err
	sched.PutBytes(r.buf)
	r.buf, r.off = nil, 0
}

// Close releases the Reader's receive buffer. Reading after Close returns
// the terminal state. It does not close the underlying reader.
func (r *Reader) Close() {
	if r.err == nil {
		r.fail(io.ErrClosedPipe)
		if r.done {
			r.err = io.EOF
		}
	}
}
