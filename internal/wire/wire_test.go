package wire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// testDict builds a dict with several lossy tensors and a metadata tail.
func testDict(rng *rand.Rand) *tensor.StateDict {
	sd := tensor.NewStateDict()
	for i, n := range []int{2048, 4096, 3000} {
		w := tensor.FromData(eblctest.WeightLike(rng, n), n)
		sd.Add("layer"+string(rune('a'+i))+".weight", tensor.KindWeight, w)
	}
	b := tensor.New(32)
	for j := range b.Data {
		b.Data[j] = float32(0.01 * rng.NormFloat64())
	}
	sd.Add("head.bias", tensor.KindBias, b)
	return sd
}

// frame builds one wire stream from a FedSZ stream.
func frame(t *testing.T, stream []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteStream(stream); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func compressDict(t *testing.T, seed uint64) ([]byte, *tensor.StateDict) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	sd := testDict(rng)
	stream, _, err := core.Compress(sd, core.Options{LossyParams: ebcl.Rel(1e-2)})
	if err != nil {
		t.Fatal(err)
	}
	return stream, sd
}

func TestWriteReadRoundTrip(t *testing.T) {
	stream, _ := compressDict(t, 1)
	framed := frame(t, stream)

	r := NewReader(bytes.NewReader(framed))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, stream) {
		t.Fatalf("reassembled payload differs: %d bytes vs %d", len(got), len(stream))
	}
	if r.PayloadBytes() != int64(len(stream)) {
		t.Fatalf("payload bytes %d, want %d", r.PayloadBytes(), len(stream))
	}
	secs, err := core.Sections(stream)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + len(secs.Tensors); r.Frames() != want {
		t.Fatalf("frames %d, want %d", r.Frames(), want)
	}
}

func TestReaderComposesWithDecompressFrom(t *testing.T) {
	stream, _ := compressDict(t, 2)
	framed := frame(t, stream)

	want, _, err := core.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := core.DecompressFrom(NewReader(bytes.NewReader(framed)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), want.Marshal()) {
		t.Fatal("wire-framed decode differs from in-memory decode")
	}
}

func TestReaderChunkedDelivery(t *testing.T) {
	stream, _ := compressDict(t, 3)
	framed := frame(t, stream)
	for _, chunk := range []int{1, 3, 64, 4096} {
		r := NewReader(io.MultiReader(
			bytes.NewReader(framed[:7]),
			&oneByteReader{data: framed[7:], chunk: chunk},
		))
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if !bytes.Equal(got, stream) {
			t.Fatalf("chunk %d: payload differs", chunk)
		}
	}
}

type oneByteReader struct {
	data  []byte
	chunk int
}

func (o *oneByteReader) Read(p []byte) (int, error) {
	if len(o.data) == 0 {
		return 0, io.EOF
	}
	n := min(min(len(p), o.chunk), len(o.data))
	copy(p, o.data[:n])
	o.data = o.data[n:]
	return n, nil
}

func TestTruncationWrapsErrCorrupt(t *testing.T) {
	stream, _ := compressDict(t, 4)
	framed := frame(t, stream)
	step := len(framed)/150 + 1
	for l := 0; l < len(framed); l += step {
		_, err := io.ReadAll(NewReader(bytes.NewReader(framed[:l])))
		if !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("truncation at %d of %d: error %v does not wrap core.ErrCorrupt", l, len(framed), err)
		}
	}
}

func TestBitFlipsWrapErrCorrupt(t *testing.T) {
	stream, _ := compressDict(t, 5)
	framed := frame(t, stream)
	rng := rand.New(rand.NewPCG(6, 7))
	for trial := 0; trial < 300; trial++ {
		bad := append([]byte(nil), framed...)
		bad[rng.IntN(len(bad))] ^= byte(rng.IntN(255) + 1)
		got, err := io.ReadAll(NewReader(bytes.NewReader(bad)))
		if err == nil {
			// CRC-32 catches every single-byte flip somewhere in the stream;
			// reaching EOF without an error means a checksum was missed.
			t.Fatalf("trial %d: flipped stream read cleanly (%d bytes)", trial, len(got))
		}
		if !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("trial %d: error %v does not wrap core.ErrCorrupt", trial, err)
		}
	}
}

func TestTrailerDetectsFrameBoundaryTruncation(t *testing.T) {
	// Per-frame CRCs cannot see a stream cut exactly between frames; the
	// trailer's counts must.
	stream, _ := compressDict(t, 8)
	secs, err := core.Sections(stream)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(FrameHeader, secs.Header); err != nil {
		t.Fatal(err)
	}
	full := NewWriter(io.Discard)
	if err := full.WriteStream(stream); err != nil {
		t.Fatal(err)
	}
	// Graft the full stream's trailer counts onto the short stream: the
	// trailer itself is intact, but promises more frames than arrived.
	w.frames = full.frames
	w.payloadBytes = full.payloadBytes
	w.streamCRC = full.streamCRC
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(NewReader(bytes.NewReader(buf.Bytes()))); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("boundary truncation: error %v does not wrap core.ErrCorrupt", err)
	}
}

func TestWriterRejectsMisuse(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(FrameTensor, []byte{1}); err == nil {
		t.Fatal("write after Close succeeded")
	}
	if err := NewWriter(&bytes.Buffer{}).WriteStream([]byte("not a fedsz stream")); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("framing junk: %v", err)
	}
}

func TestReaderRejectsNonHeaderFirstFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(FrameTensor, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(NewReader(bytes.NewReader(buf.Bytes()))); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("tensor-first stream: %v", err)
	}
}

func TestEmptyAndJunkInputs(t *testing.T) {
	for _, in := range [][]byte{nil, {0x46}, []byte("FWR1"), bytes.Repeat([]byte{0xAB}, 64)} {
		if _, err := io.ReadAll(NewReader(bytes.NewReader(in))); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("junk %v: error %v does not wrap core.ErrCorrupt", in[:min(len(in), 8)], err)
		}
	}
}

// TestEncodeStreamMatchesWriteStream: compressing straight into wire
// frames must produce byte-for-byte the frames WriteStream emits for the
// buffered stream — the sender never needs to materialize the stream.
func TestEncodeStreamMatchesWriteStream(t *testing.T) {
	sd := testDict(rand.New(rand.NewPCG(5150, 1)))
	opts := core.Options{LossyParams: ebcl.Rel(1e-2)}
	stream, _, err := core.Compress(sd, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buffered bytes.Buffer
	if err := NewWriter(&buffered).WriteStream(stream); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	stats, err := EncodeStream(context.Background(), sched.NewPool(2), NewWriter(&streamed), sd, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), buffered.Bytes()) {
		t.Fatal("EncodeStream frames differ from WriteStream of the buffered stream")
	}
	if stats.CompressedBytes != len(stream) {
		t.Fatalf("stats report %d payload bytes, stream is %d", stats.CompressedBytes, len(stream))
	}
	got, _, err := core.DecompressFrom(NewReader(bytes.NewReader(streamed.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := got.MaxAbsDiff(want); err != nil || d != 0 {
		t.Fatalf("round trip differs: d=%v err=%v", d, err)
	}
}
