// Package zfp is a pure-Go reimplementation of the ZFP fixed-rate/precision
// compressed floating-point array codec (Lindstrom, TVCG 2014) for 1-D
// float32 data, in fixed-precision mode — the mode the FedSZ paper selects
// as the closest analogue to a relative error bound (§V-D1).
//
// Per 4-value block:
//
//  1. Block-float conversion: values are scaled by the block's common
//     exponent into 32-bit signed fixed point.
//  2. The ZFP forward lifting transform decorrelates the block (an exact
//     integer approximation of an orthogonal transform).
//  3. Coefficients map to negabinary so magnitude ordering survives.
//  4. Bit planes are encoded MSB-first with ZFP's embedded group-testing
//     scheme; fixed-precision mode keeps the top `precision` planes.
//
// Because the paper's relative-bound sweeps drive all four compressors with
// one knob, Compress also accepts ModeRelative/ModeAbsolute and maps the
// bound to an equivalent precision (≈ log2(1/eb) bit planes); like real
// ZFP's precision mode this provides no hard error guarantee, only an
// empirically tight one.
package zfp

import (
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/ebcl"
)

const (
	magic     = 0x5A465031 // "ZFP1"
	blockLen  = 4
	intScale  = 30 // fixed-point scale: values in [-1,1] → ±2^30
	nbmask    = 0xaaaaaaaa
	maxPlanes = 32

	// emaxEscape is the 10-bit exponent sentinel marking a literal block:
	// a block containing NaN/±Inf has no usable common exponent, so its
	// four values are stored as raw IEEE-754 bits instead of being clamped
	// to zero (the same literal-escape discipline as SZ2/SZ3/SZx). Real
	// float32 exponents encode as emax+256 ∈ [108, 385], far from 1023.
	emaxEscape = 1<<10 - 1
)

// Params re-exports ebcl.Params.
type Params = ebcl.Params

// Compressor implements ebcl.Compressor.
type Compressor struct{}

// NewCompressor returns a ZFP compressor.
func NewCompressor() *Compressor { return &Compressor{} }

// Name implements ebcl.Compressor.
func (c *Compressor) Name() string { return "zfp" }

// PrecisionForBound maps a relative error bound to the plane count used in
// fixed-precision mode (paper: "the closest analogous option").
func PrecisionForBound(eb float64) int {
	if eb <= 0 {
		return maxPlanes
	}
	p := int(math.Ceil(math.Log2(1/eb))) + 2
	if p < 2 {
		p = 2
	}
	if p > maxPlanes {
		p = maxPlanes
	}
	return p
}

// Compress implements ebcl.Compressor (CompressAppend with a nil dst).
func (c *Compressor) Compress(data []float32, p Params) ([]byte, error) {
	return c.CompressAppend(nil, data, p)
}

// Decompress implements ebcl.Compressor (DecompressInto with a nil dst).
func (c *Compressor) Decompress(stream []byte) ([]float32, error) {
	return c.DecompressInto(nil, stream)
}

// DecodedLen implements ebcl.Compressor: the element count from the stream
// header, without decoding any payload.
func (c *Compressor) DecodedLen(stream []byte) (int, error) {
	n, _, _, err := ebcl.ParseHeader(stream, magic)
	return n, err
}

// CompressAppend implements ebcl.Compressor, appending the encoded stream
// to dst. The plane coder emits directly behind the header in dst's
// storage — no intermediate bit buffer or copy.
func (c *Compressor) CompressAppend(dst []byte, data []float32, p Params) ([]byte, error) {
	var precision int
	switch p.Mode {
	case ebcl.ModeFixedPrecision:
		if p.Value < 1 || p.Value > maxPlanes {
			return nil, fmt.Errorf("zfp: precision %g out of [1,%d]", p.Value, maxPlanes)
		}
		precision = int(p.Value)
	case ebcl.ModeRelative, ebcl.ModeAbsolute:
		if p.Value <= 0 {
			return nil, fmt.Errorf("zfp: bound must be positive, got %g", p.Value)
		}
		precision = PrecisionForBound(p.Value)
	default:
		return nil, fmt.Errorf("zfp: unknown mode %v", p.Mode)
	}
	if len(data) == 0 {
		return ebcl.AppendHeader(dst, magic, 0, ebcl.LayoutEmpty), nil
	}
	if constant := allEqual(data); constant {
		out := ebcl.AppendHeader(dst, magic, len(data), ebcl.LayoutConstant)
		return append(out,
			byte(math.Float32bits(data[0])),
			byte(math.Float32bits(data[0])>>8),
			byte(math.Float32bits(data[0])>>16),
			byte(math.Float32bits(data[0])>>24)), nil
	}

	out := ebcl.AppendHeader(dst, magic, len(data), ebcl.LayoutFull)
	out = append(out, byte(precision))
	w := bitio.NewWriterAppend(out)

	var block [blockLen]float32
	for lo := 0; lo < len(data); lo += blockLen {
		hi := min(lo+blockLen, len(data))
		m := copy(block[:], data[lo:hi])
		for i := m; i < blockLen; i++ {
			block[i] = block[m-1] // pad partial tail block
		}
		encodeBlock(w, &block, precision)
	}
	return w.Bytes(), nil
}

// DecompressInto implements ebcl.Compressor, reconstructing into dst's
// storage.
func (c *Compressor) DecompressInto(dst []float32, stream []byte) ([]float32, error) {
	n, layout, rest, err := ebcl.ParseHeader(stream, magic)
	if err != nil {
		return nil, err
	}
	switch layout {
	case ebcl.LayoutEmpty:
		return ebcl.GrowFloats(dst, 0), nil
	case ebcl.LayoutConstant:
		if len(rest) < 4 {
			return nil, ebcl.ErrCorrupt
		}
		bits := uint32(rest[0]) | uint32(rest[1])<<8 | uint32(rest[2])<<16 | uint32(rest[3])<<24
		v := math.Float32frombits(bits)
		out := ebcl.GrowFloats(dst, n)
		for i := range out {
			out[i] = v
		}
		return out, nil
	case ebcl.LayoutFull:
	default:
		return nil, ebcl.ErrCorrupt
	}
	if len(rest) < 1 {
		return nil, ebcl.ErrCorrupt
	}
	precision := int(rest[0])
	if precision < 1 || precision > maxPlanes {
		return nil, ebcl.ErrCorrupt
	}
	r := bitio.NewReader(rest[1:])
	// Each 4-value block costs at least its 1 zero-flag bit; reject counts
	// the stream cannot possibly carry before allocating.
	if n/blockLen > r.BitsRemaining() {
		return nil, ebcl.ErrCorrupt
	}
	out := ebcl.GrowFloats(dst, n)
	var block [blockLen]float32
	for lo := 0; lo < n; lo += blockLen {
		if err := decodeBlock(r, &block, precision); err != nil {
			return nil, err
		}
		copy(out[lo:min(lo+blockLen, n)], block[:])
	}
	return out, nil
}

// encodeBlock writes one 4-value block: a zero flag, the common exponent,
// and the group-tested bit planes of the negabinary coefficients. Blocks
// containing NaN/±Inf escape to raw IEEE-754 literals behind the
// emaxEscape sentinel, so non-finite values round-trip bit-exactly and
// their finite neighbours survive unclamped.
func encodeBlock(w *bitio.Writer, block *[blockLen]float32, precision int) {
	var maxAbs float64
	nonFinite := false
	for _, v := range block {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			nonFinite = true
			break
		}
		if a := math.Abs(f); a > maxAbs {
			maxAbs = a
		}
	}
	if nonFinite {
		w.WriteBit(1)
		w.WriteBits(emaxEscape, 10)
		for _, v := range block {
			w.WriteBits(uint64(math.Float32bits(v)), 32)
		}
		return
	}
	if maxAbs == 0 {
		// All-zero block.
		w.WriteBit(0)
		return
	}
	w.WriteBit(1)
	emax := int(math.Floor(math.Log2(maxAbs))) + 1 // values < 2^emax
	w.WriteBits(uint64(uint16(int16(emax+256))), 10)

	scale := math.Ldexp(1, intScale-emax)
	var iv [blockLen]int32
	for i, v := range block {
		iv[i] = int32(float64(v) * scale)
	}
	fwdLift(&iv)
	var u [blockLen]uint32
	for i, x := range iv {
		u[i] = negabinary(x)
	}
	// Embedded coding, MSB plane first, keeping `precision` planes.
	sigCount := 0
	for plane := 31; plane >= 32-precision; plane-- {
		encodePlane(w, &u, plane, &sigCount)
	}
}

func decodeBlock(r *bitio.Reader, block *[blockLen]float32, precision int) error {
	flag, err := r.ReadBit()
	if err != nil {
		return ebcl.ErrCorrupt
	}
	if flag == 0 {
		for i := range block {
			block[i] = 0
		}
		return nil
	}
	e10, err := r.ReadBits(10)
	if err != nil {
		return ebcl.ErrCorrupt
	}
	if e10 == emaxEscape {
		// Literal block: four raw IEEE-754 values.
		for i := range block {
			bits, err := r.ReadBits(32)
			if err != nil {
				return ebcl.ErrCorrupt
			}
			block[i] = math.Float32frombits(uint32(bits))
		}
		return nil
	}
	emax := int(int16(e10)) - 256

	var u [blockLen]uint32
	sigCount := 0
	for plane := 31; plane >= 32-precision; plane-- {
		if err := decodePlane(r, &u, plane, &sigCount); err != nil {
			return err
		}
	}
	var iv [blockLen]int32
	for i, x := range u {
		iv[i] = fromNegabinary(x)
	}
	invLift(&iv)
	scale := math.Ldexp(1, emax-intScale)
	for i, x := range iv {
		block[i] = float32(float64(x) * scale)
	}
	return nil
}

// planeMaxBits bounds one plane's encoding: blockLen significance bits plus
// at most one group-test bit per value — the worst case alternates test and
// value bits over the insignificant tail.
const planeMaxBits = 2*blockLen + 1

// encodePlane implements ZFP's embedded group-test coding of one bit plane.
// sigCount values are already significant (in coefficient order) and emit
// their plane bit verbatim; the insignificant tail is coded with a test bit
// per group followed by a unary search for each newly significant value.
// The plane's bits (≤ planeMaxBits) are packed locally and flushed with one
// WriteBits call.
func encodePlane(w *bitio.Writer, u *[blockLen]uint32, plane int, sigCount *int) {
	bit := func(i int) uint64 { return uint64(u[i]>>uint(plane)) & 1 }
	var acc uint64
	var k uint
	n := *sigCount
	for i := 0; i < n; i++ {
		acc = acc<<1 | bit(i)
		k++
	}
	for n < blockLen {
		any := uint64(0)
		for j := n; j < blockLen; j++ {
			if bit(j) == 1 {
				any = 1
				break
			}
		}
		acc = acc<<1 | any
		k++
		if any == 0 {
			break
		}
		for {
			b := bit(n)
			acc = acc<<1 | b
			k++
			n++
			if b == 1 {
				break
			}
		}
	}
	*sigCount = n
	w.WriteBits(acc, k)
}

func decodePlane(r *bitio.Reader, u *[blockLen]uint32, plane int, sigCount *int) error {
	// One refill covers a whole plane (≤ planeMaxBits ≤ 9 bits): peek a
	// window once, walk it locally, and consume the bits actually used.
	r.Refill()
	avail := r.Buffered()
	win := r.Peek(planeMaxBits)
	used := uint(0)
	next := func() (uint32, bool) {
		if used >= avail {
			return 0, false
		}
		b := uint32(win>>(planeMaxBits-1-used)) & 1
		used++
		return b, true
	}
	n := *sigCount
	for i := 0; i < n; i++ {
		b, ok := next()
		if !ok {
			return ebcl.ErrCorrupt
		}
		u[i] |= b << uint(plane)
	}
	for n < blockLen {
		any, ok := next()
		if !ok {
			return ebcl.ErrCorrupt
		}
		if any == 0 {
			break
		}
		// A valid stream has a 1-bit among the remaining values; a corrupt
		// one may not, so bound the scan instead of trusting the test bit.
		found := false
		for n < blockLen {
			b, ok := next()
			if !ok {
				return ebcl.ErrCorrupt
			}
			u[n] |= b << uint(plane)
			n++
			if b == 1 {
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	*sigCount = n
	r.Consume(used)
	return nil
}

// allEqual reports whether every element equals the first (bit-wise, so a
// NaN-filled array is not treated as constant).
func allEqual(data []float32) bool {
	first := math.Float32bits(data[0])
	for _, v := range data[1:] {
		if math.Float32bits(v) != first {
			return false
		}
	}
	return true
}

// fwdLift is ZFP's forward decorrelating lifting transform for 4 values.
func fwdLift(p *[blockLen]int32) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// invLift exactly inverts fwdLift.
func invLift(p *[blockLen]int32) {
	x, y, z, w := p[0], p[1], p[2], p[3]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[1], p[2], p[3] = x, y, z, w
}

// negabinary maps a two's-complement int32 to an unsigned value whose
// magnitude ordering matches bit-plane significance.
func negabinary(x int32) uint32 {
	return (uint32(x) + nbmask) ^ nbmask
}

func fromNegabinary(u uint32) int32 {
	return int32((u ^ nbmask) - nbmask)
}
