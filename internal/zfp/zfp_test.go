package zfp

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/ebcl"
	"repro/internal/eblctest"
)

func TestConformance(t *testing.T) {
	eblctest.RunConformance(t, NewCompressor(), eblctest.Options{
		// ZFP fixed-precision has no hard bound (paper §V-D1); allow slack.
		StrictBound:   false,
		LooseFactor:   8,
		MinRatioAt1e2: 2,
	})
}

func TestLiftNearInverse(t *testing.T) {
	// ZFP's forward/inverse lifts are a biorthogonal pair, exact only up to
	// a few units of integer rounding (the codec is near-lossless by
	// design, not lossless). Assert the reconstruction error is a handful
	// of ULPs at the 2^30 fixed-point scale.
	f := func(a, b, c, d int32) bool {
		mask := int32(1<<28 - 1) // headroom for the transform's range gain
		in := [4]int32{a % mask, b % mask, c % mask, d % mask}
		p := in
		fwdLift(&p)
		invLift(&p)
		for i := range p {
			diff := int64(p[i]) - int64(in[i])
			if diff < -8 || diff > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	f := func(x int32) bool { return fromNegabinary(negabinary(x)) == x }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Magnitude ordering: larger |x| should set higher bit planes.
	if bitlen(negabinary(0)) >= bitlen(negabinary(1000)) {
		t.Error("negabinary should grow with magnitude")
	}
}

func bitlen(u uint32) int {
	n := 0
	for u != 0 {
		u >>= 1
		n++
	}
	return n
}

func TestFullPrecisionNearLossless(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	data := eblctest.SmoothLike(rng, 1024)
	c := NewCompressor()
	stream, err := c.Compress(data, ebcl.Precision(32))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	// With all 32 planes the only loss is the block-float conversion.
	if got := ebcl.MaxAbsError(data, out); got > 1e-5 {
		t.Fatalf("near-lossless reconstruction error %g", got)
	}
}

func TestPrecisionControlsRatioAndError(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	data := eblctest.SmoothLike(rng, 1<<14)
	c := NewCompressor()
	var prevErr float64 = math.Inf(1)
	var prevLen int
	for _, prec := range []int{6, 10, 14, 18} {
		stream, err := c.Compress(data, ebcl.Precision(prec))
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		e := ebcl.MaxAbsError(data, out)
		// More planes must not make things meaningfully worse; near the
		// lifting-rounding noise floor small wiggle is expected.
		if e > prevErr*1.05+1e-7 {
			t.Errorf("precision %d error %g worse than previous %g", prec, e, prevErr)
		}
		if prevLen > 0 && len(stream) < prevLen {
			t.Errorf("precision %d stream smaller than lower precision", prec)
		}
		prevErr, prevLen = e, len(stream)
	}
}

func TestPrecisionForBound(t *testing.T) {
	if PrecisionForBound(1e-2) >= PrecisionForBound(1e-4) {
		t.Error("tighter bound must map to more planes")
	}
	if p := PrecisionForBound(0); p != maxPlanes {
		t.Errorf("zero bound → %d planes, want max", p)
	}
	if p := PrecisionForBound(1); p < 2 {
		t.Errorf("huge bound → %d planes, want >= 2", p)
	}
}

func TestAllZeroBlocksAreTiny(t *testing.T) {
	data := make([]float32, 4096)
	c := NewCompressor()
	stream, err := c.Compress(data, ebcl.Precision(16))
	if err != nil {
		t.Fatal(err)
	}
	// 1 flag bit per block + header.
	if len(stream) > 4096/4/8+32 {
		t.Errorf("zero data stream is %d bytes", len(stream))
	}
	out, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func BenchmarkCompressPrec8(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := eblctest.WeightLike(rng, 1<<20)
	c := NewCompressor()
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, ebcl.Precision(8)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNonFiniteRoundTripsAsLiterals(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	data := eblctest.WeightLike(rng, 4096)
	// Poison values across block positions, including a partial tail block.
	data = append(data, 0.5, float32(math.NaN()))
	data[0] = float32(math.NaN())
	data[17] = float32(math.Inf(1))
	data[18] = 0.25 // finite neighbour inside a poisoned block
	data[4095] = float32(math.Inf(-1))

	c := NewCompressor()
	for _, p := range []ebcl.Params{ebcl.Abs(1e-3), ebcl.Precision(12)} {
		stream, err := c.Compress(data, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		out, err := c.Decompress(stream)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(out) != len(data) {
			t.Fatalf("%v: length %d != %d", p, len(out), len(data))
		}
		for i, v := range data {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				if math.Float32bits(out[i]) != math.Float32bits(v) {
					t.Fatalf("%v: non-finite value at %d not bit-exact: % x -> % x",
						p, i, math.Float32bits(v), math.Float32bits(out[i]))
				}
			}
		}
		// Finite values sharing a block with NaN/Inf are stored losslessly.
		for _, i := range []int{1, 2, 3, 16, 18, 19, 4092, 4093, 4094, 4096} {
			if math.Float32bits(out[i]) != math.Float32bits(data[i]) {
				t.Fatalf("%v: finite neighbour at %d not bit-exact: %g -> %g", p, i, data[i], out[i])
			}
		}
	}
}

func TestNaNOnlyBlockDoesNotClampToZero(t *testing.T) {
	// Regression: the old encoder's maxAbs scan saw NaN comparisons as
	// false and emitted an all-zero block for NaN-only input.
	data := []float32{float32(math.NaN()), float32(math.NaN()), float32(math.NaN()), float32(math.NaN()), 1, 2, 3, 4}
	c := NewCompressor()
	stream, err := c.Compress(data, ebcl.Abs(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !math.IsNaN(float64(out[i])) {
			t.Fatalf("NaN at %d decoded as %g", i, out[i])
		}
	}
}
